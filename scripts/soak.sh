#!/usr/bin/env bash
# soak.sh — build splatt-serve with the race detector, run it for
# SOAK_SECONDS under concurrent append/job/query traffic from splatt-soak,
# and fail on any of:
#   * a data race or panic in the server log,
#   * a non-zero soak driver exit (500 response, envelope-less error body,
#     transport failure, or Prometheus conformance violation at exit),
#   * the server dying before the drain.
#
# Environment knobs:
#   SOAK_SECONDS   soak duration                       (default: 300)
#   SOAK_PORT      server listen port                  (default: 18321)
#   SOAK_WORKERS   concurrent traffic generators       (default: 8)
#   SOAK_SEED      traffic randomness seed             (default: 1)
set -euo pipefail
cd "$(dirname "$0")/.."

SECONDS_BUDGET="${SOAK_SECONDS:-300}"
PORT="${SOAK_PORT:-18321}"
WORKERS="${SOAK_WORKERS:-8}"
SEED="${SOAK_SEED:-1}"

TMP="$(mktemp -d)"
LOG="$TMP/splatt-serve.log"
cleanup() {
    if [ -n "${SERVER_PID:-}" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "building race-instrumented splatt-serve and soak driver ..."
go build -race -o "$TMP/splatt-serve" ./cmd/splatt-serve
go build -o "$TMP/splatt-soak" ./cmd/splatt-soak

echo "starting splatt-serve on :$PORT (log: $LOG) ..."
GORACE="halt_on_error=1" "$TMP/splatt-serve" -addr "localhost:$PORT" -log-json >"$LOG" 2>&1 &
SERVER_PID=$!

echo "soaking for ${SECONDS_BUDGET}s with $WORKERS workers ..."
SOAK_STATUS=0
"$TMP/splatt-soak" -base "http://localhost:$PORT" \
    -seconds "$SECONDS_BUDGET" -workers "$WORKERS" -seed "$SEED" || SOAK_STATUS=$?

# The server must still be alive after the barrage — a dead server means a
# crash the driver saw only as transport errors.
if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: splatt-serve exited during the soak; last log lines:" >&2
    tail -n 40 "$LOG" >&2
    exit 1
fi
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# Race-detector reports and recovered panic stacks both land in the log.
if grep -E -q 'DATA RACE|panic:' "$LOG"; then
    echo "FAIL: race or panic in server log:" >&2
    grep -E -n -m 5 -A 20 'DATA RACE|panic:' "$LOG" >&2
    exit 1
fi

if [ "$SOAK_STATUS" -ne 0 ]; then
    echo "FAIL: soak driver exited $SOAK_STATUS" >&2
    exit "$SOAK_STATUS"
fi

echo "soak passed: ${SECONDS_BUDGET}s clean under -race"
