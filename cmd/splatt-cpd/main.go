// Command splatt-cpd runs CP-ALS on a sparse tensor and prints the
// SPLATT-style per-routine timing report — the workflow behind every
// timing table in the paper.
//
// Input is either a tensor file (-tensor foo.tns) or a synthetic twin of a
// Table I dataset (-dataset yelp -scale 0.015625).
//
// Example:
//
//	splatt-cpd -dataset nell-2 -scale 0.01 -rank 35 -iters 20 -tasks 4 \
//	           -profile optimized
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/alto"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/csf"
	"repro/internal/dense"
	"repro/internal/format"
	"repro/internal/locks"
	"repro/internal/mttkrp"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/sketch"
	"repro/internal/sptensor"
	"repro/internal/tsort"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splatt-cpd: ")

	var (
		tensorPath = flag.String("tensor", "", "path to a .tns or binary tensor file (\"-\" reads stdin)")
		dataset    = flag.String("dataset", "", "synthetic Table I twin: yelp|rate-beer|beer-advocate|nell-2|netflix")
		scale      = flag.Float64("scale", 1.0/64, "twin scale factor (1.0 = paper scale)")
		rank       = flag.Int("rank", 35, "decomposition rank R")
		iters      = flag.Int("iters", 20, "maximum ALS iterations")
		tol        = flag.Float64("tol", 0, "convergence tolerance on fit change (0 = fixed iterations)")
		tasks      = flag.Int("tasks", 1, "worker tasks (threads)")
		seed       = flag.Int64("seed", 1, "factor initialization seed")
		profile    = flag.String("profile", "c", "implementation profile: c|initial|optimized")
		access     = flag.String("access", "", "override row access: reference|pointer|2d|slice")
		lockKind   = flag.String("locks", "", "override mutex pool: atomic|sync|fifo-sync")
		sortVar    = flag.String("sort", "", "override sort variant: initial|array|slices|all")
		alloc      = flag.String("alloc", "two", "CSF allocation policy: one|two|all")
		formatStr  = flag.String("format", "csf", "tensor storage backend: csf|alto|auto")
		solverStr  = flag.String("solver", "als", "factor-update solver: als|arls|auto (arls = leverage-score sampled with exact refinement)")
		samples    = flag.Int("samples", 0, "arls Khatri-Rao rows sampled per update (0 = heuristic)")
		refine     = flag.Int("refine", 0, "arls trailing exact refinement iterations (0 = default)")
		strategy   = flag.String("strategy", "auto", "conflict strategy: auto|lock|privatize|tile")
		nonneg     = flag.Bool("nonneg", false, "project factors onto the nonnegative orthant")
		ridge      = flag.Float64("ridge", 0, "Tikhonov regularizer added to each normal system")
		blasTh     = flag.Int("blas-threads", 0, "BLAS pool threads for the inverse routine (>1 reproduces the §V-E interference)")
		blasSpin   = flag.Int("blas-spin", 0, "BLAS pool post-call spin iterations (QT_SPINCOUNT analogue)")
		phaseProf  = flag.String("phase-profile", "", "print the span-profiler per-phase table after the run: tsv|json (-profile, by contrast, selects the implementation profile)")
	)
	flag.Parse()

	if *phaseProf != "" && *phaseProf != "tsv" && *phaseProf != "json" {
		log.Fatalf("unknown -phase-profile format %q (want tsv or json)", *phaseProf)
	}

	t, name, err := loadInput(*tensorPath, *dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.Rank = *rank
	opts.MaxIters = *iters
	opts.Tolerance = *tol
	opts.Tasks = *tasks
	opts.Seed = *seed
	opts.NonNegative = *nonneg
	opts.Ridge = *ridge
	opts.BLASThreads = *blasTh
	opts.BLASSpin = *blasSpin

	prof, err := core.ParseProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	opts.ApplyProfile(prof)
	if err := applyOverrides(&opts, *access, *lockKind, *sortVar, *alloc, *strategy, *formatStr, *solverStr); err != nil {
		log.Fatal(err)
	}
	opts.Samples = *samples
	opts.RefineIters = *refine

	stats := sptensor.ComputeStats(name, t)
	fmt.Printf("Tensor: %s\n", stats.Row())
	fmt.Printf("Config: profile=%v access=%v locks=%v sort=%v alloc=%v format=%v solver=%v rank=%d iters=%d tasks=%d\n",
		prof, opts.Access, opts.LockKind, opts.SortVariant, opts.Alloc, opts.Format, opts.Solver, opts.Rank, opts.MaxIters, opts.Tasks)
	altoWalker := "tables"
	if alto.NativeExtract() {
		altoWalker = "pext"
	}
	fmt.Printf("Kernels: cpu=%s dense=%s alto=%s\n\n", cpu.Summary(), dense.KernelISA(), altoWalker)

	timers := perf.NewRegistry()
	opts.Timers = timers
	var spans *obs.Profiler
	if *phaseProf != "" {
		spans = obs.NewProfiler(1, 8192)
		opts.Spans = spans
	}
	k, report, err := core.CPD(t, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Converged after %d iterations, final fit %.6f\n", report.Iterations, report.Fit)
	for m, s := range report.Strategies {
		fmt.Printf("  mode %d MTTKRP conflict strategy: %v\n", m, s)
	}
	fmt.Printf("  storage format: %s, %.2f MiB\n", report.Format, float64(report.CSFBytes)/(1<<20))
	fmt.Printf("  solver: %s (%d sampled + %d exact iterations)\n\n",
		report.Solver, report.SampledIters, report.Iterations-report.SampledIters)
	fmt.Print(timers.Report())

	if spans != nil {
		fmt.Println()
		prof := spans.Profile()
		var perr error
		if *phaseProf == "json" {
			perr = prof.WriteJSON(os.Stdout)
		} else {
			perr = prof.WriteTSV(os.Stdout)
		}
		if perr != nil {
			log.Fatalf("writing phase profile: %v", perr)
		}
	}

	if err := k.Validate(); err != nil {
		log.Fatalf("result failed validation: %v", err)
	}
}

// loadInput resolves the tensor source.
func loadInput(path, dataset string, scale float64) (*sptensor.Tensor, string, error) {
	switch {
	case path != "" && dataset != "":
		return nil, "", fmt.Errorf("use either -tensor or -dataset, not both")
	case path == "-":
		t, err := sptensor.LoadTensorReader(os.Stdin)
		return t, "stdin", err
	case path != "":
		t, err := sptensor.LoadFile(path)
		return t, path, err
	case dataset != "":
		spec, err := sptensor.LookupDataset(dataset)
		if err != nil {
			return nil, "", err
		}
		return spec.Generate(scale), spec.Name, nil
	default:
		flag.Usage()
		os.Exit(2)
		return nil, "", nil
	}
}

// applyOverrides layers individual axis flags over the profile defaults.
func applyOverrides(opts *core.Options, access, lockKind, sortVar, alloc, strategy, formatStr, solverStr string) error {
	if access != "" {
		a, err := mttkrp.ParseAccessMode(access)
		if err != nil {
			return err
		}
		opts.Access = a
	}
	if lockKind != "" {
		k, err := locks.ParseKind(lockKind)
		if err != nil {
			return err
		}
		opts.LockKind = k
	}
	if sortVar != "" {
		switch sortVar {
		case "initial":
			opts.SortVariant = tsort.Initial
		case "array", "array-opt":
			opts.SortVariant = tsort.ArrayOpt
		case "slices", "slices-opt":
			opts.SortVariant = tsort.SliceOpt
		case "all", "all-opts":
			opts.SortVariant = tsort.AllOpt
		default:
			return fmt.Errorf("unknown sort variant %q", sortVar)
		}
	}
	p, err := csf.ParseAllocPolicy(alloc)
	if err != nil {
		return err
	}
	opts.Alloc = p
	s, err := mttkrp.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	opts.Strategy = s
	f, err := format.Parse(formatStr)
	if err != nil {
		return err
	}
	opts.Format = f
	sv, err := sketch.Parse(solverStr)
	if err != nil {
		return err
	}
	opts.Solver = sv
	return nil
}
