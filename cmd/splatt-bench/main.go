// Command splatt-bench regenerates the paper's evaluation artifacts: every
// table (I-III) and figure (1-10) of §V, plus the repository's ablations
// (BLAS-pool interference, lock-vs-privatize, CSF allocation, CSF-vs-COO).
//
// Reports print measured values at the configured twin scale side by side
// with the paper's reported full-scale values, so the *shape* of each
// result (who wins, by what factor, where crossovers fall) can be checked
// directly. See EXPERIMENTS.md for the recorded comparison.
//
// Examples:
//
//	splatt-bench -experiment all
//	splatt-bench -experiment fig4 -scale 0.03 -trials 3
//	splatt-bench -experiment table3 -tasks 1,2,4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/alto"
	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/dense"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splatt-bench: ")

	// Numbers from two hosts are only comparable if the same kernels ran,
	// so every report records the dispatch decision up front.
	altoWalker := "tables"
	if alto.NativeExtract() {
		altoWalker = "pext"
	}
	log.Printf("kernels: cpu=%s dense=%s alto=%s", cpu.Summary(), dense.KernelISA(), altoWalker)

	def := bench.DefaultConfig()
	var (
		experiment = flag.String("experiment", "all", "experiment id: "+strings.Join(bench.ExperimentIDs(), "|")+"|all")
		scale      = flag.Float64("scale", def.Scale, "dataset twin scale factor (1.0 = paper scale)")
		rank       = flag.Int("rank", def.Rank, "decomposition rank")
		iters      = flag.Int("iters", def.Iters, "CP-ALS iterations per run")
		trials     = flag.Int("trials", def.Trials, "trials per configuration (reported: mean)")
		tasks      = flag.String("tasks", "1,2,4,8,16,32", "comma-separated task sweep")
		formatStr  = flag.String("format", "", "storage backend for all experiments: csf|alto|auto (default csf)")
		solverStr  = flag.String("solver", "", "factor-update solver for all experiments: als|arls|auto (default als)")
		profileStr = flag.String("profile", "", "print the aggregated span-profiler per-phase table after the sweep: tsv|json")
		quick      = flag.Bool("quick", false, "tiny smoke configuration")
	)
	flag.Parse()

	cfg := bench.Config{
		Scale:   *scale,
		Rank:    *rank,
		Iters:   *iters,
		Trials:  *trials,
		Format:  *formatStr,
		Solver:  *solverStr,
		Profile: *profileStr,
	}
	var err error
	cfg.Tasks, err = parseTasks(*tasks)
	if err != nil {
		log.Fatal(err)
	}
	if *quick {
		cfg = bench.QuickConfig()
		cfg.Format = *formatStr
		cfg.Solver = *solverStr
		cfg.Profile = *profileStr
	}

	r, err := bench.NewRunner(cfg, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Run(*experiment); err != nil {
		log.Fatal(err)
	}
	if *profileStr != "" {
		fmt.Println()
		if err := r.WriteProfile(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func parseTasks(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad task count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
