// Command splatt-gen generates sparse tensors: either synthetic structural
// twins of the paper's Table I datasets or uniform random tensors with
// explicit dimensions. Output is .tns text (1-indexed, FROSTT-compatible)
// or the binary container, selected by the output extension.
//
// Examples:
//
//	splatt-gen -dataset yelp -scale 0.015625 -out yelp-64th.tns
//	splatt-gen -dims 1000x800x1200 -nnz 100000 -seed 7 -out random.bin
//	splatt-gen -dims 100x80x60 -nnz 5000 -out - | curl --data-binary @- localhost:8080/tensors
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/sptensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splatt-gen: ")

	var (
		dataset = flag.String("dataset", "", "Table I twin: yelp|rate-beer|beer-advocate|nell-2|netflix")
		scale   = flag.Float64("scale", 1.0/64, "twin scale factor (1.0 = paper scale)")
		dims    = flag.String("dims", "", "explicit dimensions, e.g. 1000x800x1200")
		nnz     = flag.Int("nnz", 0, "nonzero count for -dims tensors")
		seed    = flag.Int64("seed", 1, "generator seed for -dims tensors")
		out     = flag.String("out", "", "output path (.tns = text, otherwise binary; \"-\" writes stdout)")
		format  = flag.String("format", "", "force output format: tns|bin (default: by extension, tns on stdout)")
	)
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var (
		t    *sptensor.Tensor
		name string
	)
	switch {
	case *dataset != "" && *dims != "":
		log.Fatal("use either -dataset or -dims, not both")
	case *dataset != "":
		spec, err := sptensor.LookupDataset(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		t = spec.Generate(*scale)
		name = spec.Name
	case *dims != "":
		dd, err := parseDims(*dims)
		if err != nil {
			log.Fatal(err)
		}
		if *nnz <= 0 {
			log.Fatal("-dims requires -nnz > 0")
		}
		t = sptensor.Random(dd, *nnz, *seed)
		name = *dims
	default:
		flag.Usage()
		os.Exit(2)
	}

	if err := save(*out, *format, t); err != nil {
		log.Fatal(err)
	}
	stats := sptensor.ComputeStats(name, t)
	fmt.Fprintf(os.Stderr, "wrote %s\n%s\n", *out, stats.Row())
}

// save routes the tensor to stdout or a file through the writer API.
func save(out, formatFlag string, t *sptensor.Tensor) error {
	format := sptensor.FormatForPath(out)
	if out == "-" {
		format = sptensor.FormatTNS
	}
	if formatFlag != "" {
		f, err := sptensor.ParseFormat(formatFlag)
		if err != nil {
			return err
		}
		format = f
	}
	if out == "-" {
		return sptensor.SaveTensorWriter(os.Stdout, t, format)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := sptensor.SaveTensorWriter(f, t, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseDims parses "AxBxC" into mode lengths.
func parseDims(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) < 2 {
		return nil, fmt.Errorf("dims %q: need at least two modes", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("dims %q: bad mode length %q", s, p)
		}
		dims[i] = v
	}
	return dims, nil
}
