// Command splatt-verify cross-checks every MTTKRP kernel configuration —
// access modes × conflict strategies × lock kinds × CSF allocation
// policies × task counts — against the naive coordinate-form MTTKRP on
// random tensors, and validates full CPD runs across implementation
// profiles. It is the repository's end-to-end correctness gate.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/csf"
	"repro/internal/dense"
	"repro/internal/locks"
	"repro/internal/mttkrp"
	"repro/internal/parallel"
	"repro/internal/sptensor"
	"repro/internal/tsort"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splatt-verify: ")

	var (
		seed   = flag.Int64("seed", 1, "random tensor seed")
		rank   = flag.Int("rank", 9, "decomposition rank")
		trials = flag.Int("trials", 3, "random tensors per configuration")
	)
	flag.Parse()

	failures := 0
	failures += verifyKernels(*seed, *rank, *trials)
	failures += verifyProfiles(*seed + 1000)
	failures += verifyArbitraryOrder(*seed + 2000)

	if failures > 0 {
		fmt.Printf("\nFAIL: %d configuration(s) deviated\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nPASS: all configurations match the coordinate-form reference")
}

// verifyKernels sweeps the kernel configuration space on 3rd-order tensors.
func verifyKernels(seed int64, rank, trials int) int {
	fmt.Println("== MTTKRP kernel matrix (3rd order) ==")
	accesses := []mttkrp.AccessMode{
		mttkrp.AccessReference, mttkrp.AccessPointer, mttkrp.AccessIndex2D, mttkrp.AccessSlice,
	}
	strategies := []mttkrp.ConflictStrategy{
		mttkrp.StrategyAuto, mttkrp.StrategyLock, mttkrp.StrategyPrivatize,
	}
	kinds := []locks.Kind{locks.Spin, locks.Sync, locks.FIFO}
	allocs := []csf.AllocPolicy{csf.AllocOne, csf.AllocTwo, csf.AllocAll}

	failures := 0
	for trial := 0; trial < trials; trial++ {
		t := sptensor.Random([]int{60, 45, 80}, 4000, seed+int64(trial))
		factors := randomFactors(t.Dims, rank, seed+int64(trial)+500)
		for _, alloc := range allocs {
			for _, access := range accesses {
				for _, strategy := range strategies {
					for _, kind := range kinds {
						for _, tasks := range []int{1, 2, 4} {
							opts := mttkrp.Options{
								Access: access, Strategy: strategy, LockKind: kind,
							}
							if !verifyOne(t, factors, rank, tasks, alloc, opts) {
								fmt.Printf("  FAIL access=%v strategy=%v locks=%v alloc=%v tasks=%d\n",
									access, strategy, kind, alloc, tasks)
								failures++
							}
						}
					}
				}
			}
		}
	}
	fmt.Printf("  kernel matrix verified over %d trials\n", trials)
	return failures
}

// verifyOne compares an operator configuration to COO on every mode.
func verifyOne(t *sptensor.Tensor, factors []*dense.Matrix, rank, tasks int,
	alloc csf.AllocPolicy, opts mttkrp.Options) bool {

	team := parallel.NewTeam(tasks)
	defer team.Close()
	set := csf.NewSet(t, alloc, team, tsort.AllOpt)
	op := mttkrp.NewOperator(set, team, rank, opts)
	for mode := 0; mode < t.NModes(); mode++ {
		want := dense.NewMatrix(t.Dims[mode], rank)
		mttkrp.COO(t, factors, mode, want)
		got := dense.NewMatrix(t.Dims[mode], rank)
		op.Apply(mode, factors, got)
		if got.MaxAbsDiff(want) > 1e-9 {
			return false
		}
	}
	return true
}

// verifyProfiles checks that full CPD runs agree across profiles.
func verifyProfiles(seed int64) int {
	fmt.Println("== CPD profile agreement ==")
	t := sptensor.Random([]int{40, 30, 35}, 3000, seed)
	opts := core.DefaultOptions()
	opts.Rank = 6
	opts.MaxIters = 8
	opts.Tasks = 4

	failures := 0
	var ref *core.KruskalTensor
	for _, p := range core.Profiles {
		o := opts
		o.ApplyProfile(p)
		k, report, err := core.CPD(t, o)
		if err != nil {
			log.Fatalf("profile %v: %v", p, err)
		}
		fmt.Printf("  %-16v fit=%.6f iters=%d\n", p, report.Fit, report.Iterations)
		if ref == nil {
			ref = k
			continue
		}
		for m := range ref.Factors {
			if d := ref.Factors[m].MaxAbsDiff(k.Factors[m]); d > 1e-6 {
				fmt.Printf("  FAIL profile %v factor %d deviates by %g\n", p, m, d)
				failures++
			}
		}
	}
	return failures
}

// verifyArbitraryOrder exercises the generic N-mode path.
func verifyArbitraryOrder(seed int64) int {
	fmt.Println("== arbitrary-order kernels ==")
	failures := 0
	for _, dims := range [][]int{{15, 12}, {10, 8, 9, 7}, {6, 5, 7, 4, 5}} {
		t := sptensor.Random(dims, 600, seed)
		factors := randomFactors(dims, 5, seed+1)
		opts := mttkrp.DefaultOptions()
		if !verifyOne(t, factors, 5, 3, csf.AllocTwo, opts) {
			fmt.Printf("  FAIL order %d\n", len(dims))
			failures++
		} else {
			fmt.Printf("  order %d ok\n", len(dims))
		}
	}
	return failures
}

func randomFactors(dims []int, rank int, seed int64) []*dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	factors := make([]*dense.Matrix, len(dims))
	for m, d := range dims {
		factors[m] = dense.NewRandomMatrix(d, rank, rng)
	}
	return factors
}
