// Command splatt-stats prints Table-I style statistics for tensor files
// and optionally converts between the text (.tns) and binary container
// formats.
//
// Examples:
//
//	splatt-stats data.tns another.bin
//	splatt-stats -convert data.bin data.tns     # binary -> text
//	splatt-stats -convert data.bin -            # binary -> .tns on stdout
//
// "-" stands for stdin (inputs) or stdout (convert output; .tns text).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/sptensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splatt-stats: ")

	convert := flag.Bool("convert", false, "convert: splatt-stats -convert <in> <out>")
	flag.Parse()
	args := flag.Args()

	if *convert {
		if len(args) != 2 {
			log.Fatal("-convert requires exactly <in> <out>")
		}
		t, err := load(args[0])
		if err != nil {
			log.Fatal(err)
		}
		if err := save(args[1], t); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "converted %s -> %s (%d nonzeros)\n", args[0], args[1], t.NNZ())
		return
	}

	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("%-14s %-22s %10s %10s %10s\n", "Name", "Dimensions", "Non-Zeros", "Density", "Memory")
	for _, path := range args {
		t, err := load(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		s := sptensor.ComputeStats(filepath.Base(path), t)
		fmt.Println(s.Row())
		for m := range t.Dims {
			counts := t.SliceCounts(m)
			var max int64
			empty := 0
			for _, c := range counts {
				if c > max {
					max = c
				}
				if c == 0 {
					empty++
				}
			}
			fmt.Printf("  mode %d: %7d slices, max %7d nnz/slice, %d empty (skew indicator)\n",
				m, len(counts), max, empty)
		}
	}
}

// load reads a tensor from a path or stdin ("-") via the reader API.
func load(path string) (*sptensor.Tensor, error) {
	if path == "-" {
		return sptensor.LoadTensorReader(os.Stdin)
	}
	return sptensor.LoadFile(path)
}

// save writes a tensor to a path or stdout ("-", .tns text) via the
// writer API.
func save(path string, t *sptensor.Tensor) error {
	if path == "-" {
		return sptensor.SaveTensorWriter(os.Stdout, t, sptensor.FormatTNS)
	}
	return sptensor.SaveFile(path, t)
}
