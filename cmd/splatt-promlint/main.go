// Command splatt-promlint checks a Prometheus text-exposition (0.0.4)
// payload for conformance violations: malformed metric/label names,
// HELP/TYPE ordering, interleaved families, duplicate series, negative
// counters, and inconsistent histogram ladders. It reads from stdin, a
// file, or an http(s) URL, and exits nonzero on the first violation — the
// check the nightly soak runs against a live splatt-serve before tearing
// it down.
//
//	splatt-promlint http://localhost:8080/v1/metrics/prometheus
//	curl -s localhost:8080/v1/metrics/prometheus | splatt-promlint
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func open(arg string) (io.ReadCloser, error) {
	if arg == "" || arg == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Get(arg)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("GET %s: status %d", arg, resp.StatusCode)
		}
		return resp.Body, nil
	}
	return os.Open(arg)
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: splatt-promlint [file | URL | -]\n\nLints a Prometheus text exposition; exits 1 on the first violation.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	arg := ""
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		arg = flag.Arg(0)
	}
	r, err := open(arg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "splatt-promlint: %v\n", err)
		os.Exit(2)
	}
	defer r.Close()
	if err := obs.LintPrometheus(r); err != nil {
		fmt.Fprintf(os.Stderr, "splatt-promlint: %v\n", err)
		os.Exit(1)
	}
}
