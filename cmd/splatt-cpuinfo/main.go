// Command splatt-cpuinfo prints the detected CPU feature set and the
// kernel paths the dispatch layer resolved to, one key=value triple on a
// single line:
//
//	cpu=amd64:avx2+fma+bmi2 dense=avx2+fma alto=pext
//
// scripts/bench.sh stamps this line into every benchmark record so
// scripts/bench_compare.sh can refuse to quietly compare numbers produced
// by different kernel sets (e.g. a purego or SPLATT_DISABLE_SIMD run
// against an AVX2 baseline).
package main

import (
	"fmt"

	"repro/internal/alto"
	"repro/internal/cpu"
	"repro/internal/dense"
)

func main() {
	altoWalker := "tables"
	if alto.NativeExtract() {
		altoWalker = "pext"
	}
	fmt.Printf("cpu=%s dense=%s alto=%s\n", cpu.Summary(), dense.KernelISA(), altoWalker)
}
