// Command splatt-serve runs the long-lived decomposition service: tensors
// are uploaded once, stay resident in a content-addressed cache, and any
// number of CPD / distributed / completion jobs run against them through a
// prioritized queue and a bounded worker pool.
//
// Jobs submitted with "publish":true land their Kruskal result in a
// content-addressed model registry, queryable at sub-millisecond latency
// (entry reconstruction, top-K scoring, cosine nearest-factors).
//
// Observability: every request carries an X-Request-ID (propagated or
// generated) and is access-logged in structured form; GET /v1/metrics
// serves the JSON metrics document, GET /v1/metrics/prometheus the same
// registry in Prometheus text exposition; GET /v1/jobs/{id} reports live
// per-iteration progress while a job runs and /v1/jobs/{id}/trace the full
// retained timeline.
//
// Example session:
//
//	splatt-serve -addr :8080 -workers 4 &
//	curl -s --data-binary @data.tns localhost:8080/v1/tensors
//	curl -s -X POST -d '{"tensor_id":"<id>","rank":16,"tasks":4,"publish":true}' localhost:8080/v1/jobs
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/trace
//	curl -s -X POST -d '{"mode":1,"coord":[7,0,3],"k":10}' localhost:8080/v1/models/<model_id>/topk
//	curl -s localhost:8080/v1/metrics/prometheus
//
// On SIGINT/SIGTERM the process stops accepting connections, cancels
// in-flight jobs, and drains both the HTTP server and the worker pool
// within -grace; a pool that cannot drain in time forces a nonzero exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/alto"
	"repro/internal/cpu"
	"repro/internal/dense"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		workers   = flag.Int("workers", 2, "decomposition worker pool size")
		queueCap  = flag.Int("queue", 256, "pending-job queue capacity (full queue => 503)")
		cacheN    = flag.Int("cache-tensors", 64, "max resident tensors (LRU-evicted beyond)")
		cacheMB   = flag.Int64("cache-mb", 0, "max resident tensor MiB (0 = unbounded)")
		modelN    = flag.Int("cache-models", 32, "max resident published models (LRU-evicted beyond)")
		modelMB   = flag.Int64("cache-model-mb", 0, "max resident model MiB (0 = unbounded)")
		uploadMB  = flag.Int64("max-upload-mb", 1024, "max upload body MiB (above => 413)")
		reqTimeo  = flag.Duration("request-timeout", 30*time.Second, "per-request handler deadline (exceeded => 503)")
		upTimeo   = flag.Duration("upload-timeout", 2*time.Minute, "upload handler deadline")
		traceN    = flag.Int("trace-events", 512, "per-job iteration-trace ring capacity")
		spanN     = flag.Int("span-events", 4096, "per-job per-locale span-event ring capacity for /v1/jobs/{id}/timeline (earliest events kept; per-phase aggregates on /profile stay exact regardless; 0 = aggregates only)")
		gracePeri = flag.Duration("grace", 10*time.Second, "shutdown grace period")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (CPU/heap profiling of a live service; keep off on untrusted networks)")
		mutexFrac = flag.Int("mutexprofile", 0, "mutex contention profiling fraction for /debug/pprof/mutex: sample 1/N of contention events (0 = off; requires -pprof; small N costs hot-path overhead)")
		blockRate = flag.Int("blockprofile", 0, "goroutine blocking profile rate for /debug/pprof/block: one sample per N ns blocked (0 = off, 1 = every event; requires -pprof)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	var handlerOpts slog.HandlerOptions
	var logHandler slog.Handler = slog.NewTextHandler(os.Stderr, &handlerOpts)
	if *logJSON {
		logHandler = slog.NewJSONHandler(os.Stderr, &handlerOpts)
	}
	logger := slog.New(logHandler).With(slog.String("service", "splatt-serve"))

	// One line at startup saying which kernels this process will actually
	// run — the same facts the splatt_cpu_features metric exports.
	logger.Info("kernel dispatch",
		slog.String("cpu", cpu.Summary()),
		slog.String("dense_isa", dense.KernelISA()),
		slog.Bool("alto_pext", alto.NativeExtract()))

	srv := serve.NewServer(serve.Config{
		Workers:          *workers,
		QueueCapacity:    *queueCap,
		MaxCachedTensors: *cacheN,
		MaxCacheBytes:    *cacheMB << 20,
		MaxCachedModels:  *modelN,
		MaxModelBytes:    *modelMB << 20,
		MaxUploadBytes:   *uploadMB << 20,
		RequestTimeout:   *reqTimeo,
		UploadTimeout:    *upTimeo,
		MaxTraceEvents:   *traceN,
		MaxSpanEvents:    *spanN,
		Logger:           logger,
	})

	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Info("pprof enabled", slog.String("path", "/debug/pprof/"))
		// Mutex and block profiling are opt-in because sampling costs
		// hot-path overhead; they only matter when pprof is serving.
		if *mutexFrac > 0 {
			runtime.SetMutexProfileFraction(*mutexFrac)
			logger.Info("mutex profiling enabled", slog.Int("fraction", *mutexFrac))
		}
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
			logger.Info("block profiling enabled", slog.Int("rate_ns", *blockRate))
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening",
			slog.String("addr", *addr),
			slog.Int("workers", *workers),
			slog.Int("queue", *queueCap),
			slog.Int("cache_tensors", *cacheN),
			slog.Int("cache_models", *modelN))
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", slog.Any("error", err))
			os.Exit(1)
		}
	case sig := <-sigCh:
		logger.Info("shutting down",
			slog.String("signal", sig.String()),
			slog.Duration("grace", *gracePeri))
		ctx, cancel := context.WithTimeout(context.Background(), *gracePeri)
		defer cancel()
		// Drain HTTP first (stops new submissions), then the worker pool
		// (in-flight jobs are cancelled and unwound). Either failing to
		// drain within the grace period forces a nonzero exit so process
		// supervisors see the unclean stop.
		httpErr := httpSrv.Shutdown(ctx)
		poolErr := srv.Shutdown(ctx)
		if httpErr != nil || poolErr != nil {
			logger.Error("forced shutdown",
				slog.Any("http", httpErr), slog.Any("workers", poolErr))
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	}
}
