// Command splatt-serve runs the long-lived decomposition service: tensors
// are uploaded once, stay resident in a content-addressed cache, and any
// number of CPD / distributed / completion jobs run against them through a
// prioritized queue and a bounded worker pool.
//
// Jobs submitted with "publish":true land their Kruskal result in a
// content-addressed model registry, queryable at sub-millisecond latency
// (entry reconstruction, top-K scoring, cosine nearest-factors).
//
// Example session:
//
//	splatt-serve -addr :8080 -workers 4 &
//	curl -s --data-binary @data.tns localhost:8080/v1/tensors
//	curl -s -X POST -d '{"tensor_id":"<id>","rank":16,"tasks":4,"publish":true}' localhost:8080/v1/jobs
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s -X POST -d '{"mode":1,"coord":[7,0,3],"k":10}' localhost:8080/v1/models/<model_id>/topk
//	curl -s localhost:8080/v1/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splatt-serve: ")

	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		workers   = flag.Int("workers", 2, "decomposition worker pool size")
		queueCap  = flag.Int("queue", 256, "pending-job queue capacity (full queue => 503)")
		cacheN    = flag.Int("cache-tensors", 64, "max resident tensors (LRU-evicted beyond)")
		cacheMB   = flag.Int64("cache-mb", 0, "max resident tensor MiB (0 = unbounded)")
		modelN    = flag.Int("cache-models", 32, "max resident published models (LRU-evicted beyond)")
		modelMB   = flag.Int64("cache-model-mb", 0, "max resident model MiB (0 = unbounded)")
		uploadMB  = flag.Int64("max-upload-mb", 1024, "max upload body MiB")
		gracePeri = flag.Duration("grace", 10*time.Second, "shutdown grace period")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (CPU/heap profiling of a live service; keep off on untrusted networks)")
	)
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		Workers:          *workers,
		QueueCapacity:    *queueCap,
		MaxCachedTensors: *cacheN,
		MaxCacheBytes:    *cacheMB << 20,
		MaxCachedModels:  *modelN,
		MaxModelBytes:    *modelMB << 20,
		MaxUploadBytes:   *uploadMB << 20,
	})

	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/ (e.g. go tool pprof http://localhost%s/debug/pprof/profile)", *addr)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d workers, queue %d, cache %d tensors / %d models)",
			*addr, *workers, *queueCap, *cacheN, *modelN)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigCh:
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *gracePeri)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		srv.Close()
	}
}
