// Command splatt-soak drives a running splatt-serve with sustained mixed
// traffic — uploads, append batches, cold and warm-started jobs, status
// and trace polls, model queries, deletes — and verifies the service's two
// hard contracts under churn:
//
//  1. every error response carries the uniform envelope
//     {"error":{"code","message"}}, and no request ever surfaces a 500
//     (the middleware converts handler panics to 500s, so a 500 IS a
//     panic); and
//  2. the Prometheus exposition stays conformant, checked by linting a
//     final scrape.
//
// It exits nonzero on the first class of violation it saw, which makes it
// the nightly CI soak gate:
//
//	splatt-serve -addr :18321 &
//	splatt-soak -base http://localhost:18321 -seconds 300 -workers 8
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sptensor"
)

type soaker struct {
	base   string
	client *http.Client

	mu      sync.Mutex
	tensors []string // resident tensor/revision IDs (best-effort)
	models  []string

	requests   atomic.Int64
	violations atomic.Int64

	errMu     sync.Mutex
	firstErrs []string
}

func (s *soaker) violate(format string, args ...any) {
	s.violations.Add(1)
	s.errMu.Lock()
	if len(s.firstErrs) < 20 {
		s.firstErrs = append(s.firstErrs, fmt.Sprintf(format, args...))
	}
	s.errMu.Unlock()
}

// check enforces the error-envelope contract on one response and returns
// the body. A 5xx other than 503 means a recovered panic or an internal
// failure leaking through — both soak violations. 4xx and 503 are expected
// under adversarial traffic but must carry the envelope.
func (s *soaker) check(op string, resp *http.Response, err error) []byte {
	s.requests.Add(1)
	if err != nil {
		s.violate("%s: transport error: %v", op, err)
		return nil
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode < 400 {
		return body
	}
	if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
		s.violate("%s: status %d (panic or internal error): %.200s", op, resp.StatusCode, body)
		return nil
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) != nil || env.Error.Code == "" || env.Error.Message == "" {
		s.violate("%s: status %d without the error envelope: %.200s", op, resp.StatusCode, body)
	}
	return nil
}

func (s *soaker) get(path string) []byte {
	resp, err := s.client.Get(s.base + path)
	return s.check("GET "+path, resp, err)
}

func (s *soaker) do(method, path string, body []byte) []byte {
	req, err := http.NewRequest(method, s.base+path, bytes.NewReader(body))
	if err != nil {
		s.violate("%s %s: building request: %v", method, path, err)
		return nil
	}
	resp, rerr := s.client.Do(req)
	return s.check(method+" "+path, resp, rerr)
}

func (s *soaker) remember(list *[]string, id string) {
	s.mu.Lock()
	*list = append(*list, id)
	if len(*list) > 64 {
		*list = (*list)[len(*list)-64:]
	}
	s.mu.Unlock()
}

func (s *soaker) pick(list *[]string, rng *rand.Rand) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(*list) == 0 {
		return "", false
	}
	return (*list)[rng.Intn(len(*list))], true
}

func tnsBody(rng *rand.Rand) []byte {
	dims := []int{4 + rng.Intn(24), 4 + rng.Intn(16), 4 + rng.Intn(10)}
	nnz := 16 + rng.Intn(256)
	t := sptensor.Random(dims, nnz, rng.Int63())
	var buf bytes.Buffer
	_ = sptensor.WriteTNS(&buf, t)
	return buf.Bytes()
}

// step runs one randomly chosen operation against the service.
func (s *soaker) step(rng *rand.Rand) {
	switch op := rng.Intn(100); {
	case op < 15: // upload
		if body := s.do("POST", "/v1/tensors", tnsBody(rng)); body != nil {
			var res struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(body, &res) == nil && res.ID != "" {
				s.remember(&s.tensors, res.ID)
			}
		}
	case op < 30: // append a batch, growing the revision chain
		id, ok := s.pick(&s.tensors, rng)
		if !ok {
			return
		}
		if body := s.do("PATCH", "/v1/tensors/"+id, tnsBody(rng)); body != nil {
			var res struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(body, &res) == nil && res.ID != "" {
				s.remember(&s.tensors, res.ID)
			}
		}
	case op < 45: // submit a job: cold, published, or warm-started
		id, ok := s.pick(&s.tensors, rng)
		if !ok {
			return
		}
		spec := map[string]any{
			"tensor_id": id,
			"rank":      2 + rng.Intn(6),
			"max_iters": 1 + rng.Intn(5),
			"seed":      rng.Intn(1000),
		}
		switch rng.Intn(3) {
		case 0:
			spec["publish"] = true
		case 1:
			spec["warm_start"] = "auto" // may fail the job; must not panic
		}
		raw, _ := json.Marshal(spec)
		if body := s.do("POST", "/v1/jobs", raw); body != nil {
			var st struct {
				ID string `json:"id"`
				// Result is polled below; the submit response has none.
			}
			if json.Unmarshal(body, &st) == nil && st.ID != "" {
				s.pollJob(st.ID, rng)
			}
		}
	case op < 60: // listings and metrics
		paths := []string{
			"/v1/tensors", "/v1/tensors?limit=3", "/v1/jobs", "/v1/jobs?status=done",
			"/v1/models", "/v1/metrics", "/v1/healthz",
		}
		s.get(paths[rng.Intn(len(paths))])
	case op < 70: // revision chains
		if id, ok := s.pick(&s.tensors, rng); ok {
			s.get("/v1/tensors/" + id + "/revisions")
			s.get(fmt.Sprintf("/v1/tensors/%s/revisions?limit=%d&offset=%d", id, rng.Intn(4), rng.Intn(4)))
		}
	case op < 80: // model queries (including invalid coords: 400s with envelopes)
		id, ok := s.pick(&s.models, rng)
		if !ok {
			return
		}
		switch rng.Intn(3) {
		case 0:
			s.get(fmt.Sprintf("/v1/models/%s/entry?coord=%d,%d,%d", id, rng.Intn(30), rng.Intn(30), rng.Intn(30)))
		case 1:
			raw, _ := json.Marshal(map[string]any{"mode": rng.Intn(4), "coord": []int{0, 0, 0}, "k": 1 + rng.Intn(5)})
			s.do("POST", "/v1/models/"+id+"/topk", raw)
		default:
			s.get("/v1/models/" + id)
		}
	case op < 90: // deletes: 404/409 under churn are fine, envelopes required
		if id, ok := s.pick(&s.tensors, rng); ok && rng.Intn(4) == 0 {
			s.do("DELETE", "/v1/tensors/"+id, nil)
		} else if id, ok := s.pick(&s.models, rng); ok {
			s.do("DELETE", "/v1/models/"+id, nil)
		}
	default: // adversarial inputs: garbage bodies, unknown IDs
		switch rng.Intn(4) {
		case 0:
			s.do("POST", "/v1/tensors", []byte("not a tensor at all"))
		case 1:
			s.do("PATCH", "/v1/tensors/deadbeef", []byte("1 1 1 1.0\n"))
		case 2:
			s.do("POST", "/v1/jobs", []byte(`{"tensor_id":`))
		default:
			s.get("/v1/jobs/job-999999/trace")
		}
	}
}

// pollJob follows one submitted job for a bounded time, harvesting its
// published model and exercising the trace/profile surfaces while it runs.
func (s *soaker) pollJob(id string, rng *rand.Rand) {
	for i := 0; i < 50; i++ {
		body := s.get("/v1/jobs/" + id)
		if body == nil {
			return
		}
		if rng.Intn(2) == 0 {
			s.get("/v1/jobs/" + id + "/trace")
		} else {
			s.get("/v1/jobs/" + id + "/profile")
		}
		var st struct {
			State  string `json:"state"`
			Result *struct {
				ModelID string `json:"model_id"`
			} `json:"result"`
		}
		if json.Unmarshal(body, &st) != nil {
			return
		}
		switch st.State {
		case "done", "failed", "cancelled":
			if st.Result != nil && st.Result.ModelID != "" {
				s.remember(&s.models, st.Result.ModelID)
			}
			return
		}
		time.Sleep(time.Duration(5+rng.Intn(20)) * time.Millisecond)
	}
}

func main() {
	var (
		base    = flag.String("base", "http://localhost:8080", "splatt-serve base URL")
		seconds = flag.Int("seconds", 300, "soak duration")
		workers = flag.Int("workers", 8, "concurrent traffic generators")
		seed    = flag.Int64("seed", 1, "traffic randomness seed")
	)
	flag.Parse()

	s := &soaker{
		base:   *base,
		client: &http.Client{Timeout: 60 * time.Second},
	}

	// The service must be up before the clock starts.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := s.client.Get(*base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "splatt-soak: service at %s never became healthy: %v\n", *base, err)
			os.Exit(2)
		}
		time.Sleep(250 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*seconds)*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for ctx.Err() == nil {
				s.step(rng)
			}
		}(w)
	}
	wg.Wait()

	// Final conformance scrape: the exposition of a service that just
	// served every family under concurrency must lint clean.
	resp, err := s.client.Get(*base + "/v1/metrics/prometheus")
	if err != nil {
		fmt.Fprintf(os.Stderr, "splatt-soak: final scrape: %v\n", err)
		os.Exit(1)
	}
	lintErr := obs.LintPrometheus(resp.Body)
	resp.Body.Close()
	if lintErr != nil {
		fmt.Fprintf(os.Stderr, "splatt-soak: prometheus conformance: %v\n", lintErr)
		os.Exit(1)
	}

	fmt.Printf("splatt-soak: %d requests over %ds, %d violations\n",
		s.requests.Load(), *seconds, s.violations.Load())
	if n := s.violations.Load(); n > 0 {
		s.errMu.Lock()
		for _, e := range s.firstErrs {
			fmt.Fprintf(os.Stderr, "splatt-soak: violation: %s\n", e)
		}
		s.errMu.Unlock()
		os.Exit(1)
	}
}
