// Command splatt-query is the client for splatt-serve's model-serving API:
// it lists resident models and issues the three inference queries (entry
// reconstruction, top-K scoring, cosine nearest-factors) against a running
// service.
//
// Usage:
//
//	splatt-query [-addr host:port] <command> [flags]
//
// Commands:
//
//	list                              resident models
//	info    -model <id>               one model's metadata
//	entry   -model <id> -coord i,j,k  reconstruct one entry
//	topk    -model <id> -mode M -coord i,j,k [-k 10]
//	similar -model <id> -mode M -index I [-k 10]
//	delete  -model <id>
//
// Example:
//
//	splatt-query -addr localhost:8080 topk -model 3fe1... -mode 1 -coord 7,0,3 -k 10
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("splatt-query: ")

	addr := flag.String("addr", "localhost:8080", "splatt-serve address")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	base := "http://" + strings.TrimPrefix(*addr, "http://") + "/v1"
	cmd, args := flag.Arg(0), flag.Args()[1:]

	var err error
	switch cmd {
	case "list":
		err = do("GET", base+"/models", nil)
	case "info":
		fs := flag.NewFlagSet("info", flag.ExitOnError)
		id := fs.String("model", "", "model ID")
		_ = fs.Parse(args)
		err = do("GET", base+"/models/"+need(fs, *id), nil)
	case "entry":
		fs := flag.NewFlagSet("entry", flag.ExitOnError)
		id := fs.String("model", "", "model ID")
		coord := fs.String("coord", "", "comma-separated coordinate, e.g. 3,1,4")
		_ = fs.Parse(args)
		err = do("GET", base+"/models/"+need(fs, *id)+"/entry?coord="+need(fs, *coord), nil)
	case "topk":
		fs := flag.NewFlagSet("topk", flag.ExitOnError)
		id := fs.String("model", "", "model ID")
		mode := fs.Int("mode", 0, "mode whose indices are ranked")
		coord := fs.String("coord", "", "fixed coordinate (target-mode component ignored)")
		k := fs.Int("k", 10, "results to return")
		_ = fs.Parse(args)
		body := map[string]any{"mode": *mode, "coord": ints(need(fs, *coord)), "k": *k}
		err = do("POST", base+"/models/"+need(fs, *id)+"/topk", body)
	case "similar":
		fs := flag.NewFlagSet("similar", flag.ExitOnError)
		id := fs.String("model", "", "model ID")
		mode := fs.Int("mode", 0, "factor-matrix mode")
		index := fs.Int("index", 0, "query row within the mode")
		k := fs.Int("k", 10, "results to return")
		_ = fs.Parse(args)
		body := map[string]any{"mode": *mode, "index": *index, "k": *k}
		err = do("POST", base+"/models/"+need(fs, *id)+"/similar", body)
	case "delete":
		fs := flag.NewFlagSet("delete", flag.ExitOnError)
		id := fs.String("model", "", "model ID")
		_ = fs.Parse(args)
		err = do("DELETE", base+"/models/"+need(fs, *id), nil)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: splatt-query [-addr host:port] <command> [flags]

commands:
  list                              resident models
  info    -model <id>               one model's metadata
  entry   -model <id> -coord i,j,k  reconstruct one entry
  topk    -model <id> -mode M -coord i,j,k [-k 10]
  similar -model <id> -mode M -index I [-k 10]
  delete  -model <id>
`)
	flag.PrintDefaults()
}

// need exits with the subcommand's usage when a required flag is empty.
func need(fs *flag.FlagSet, v string) string {
	if v == "" {
		fs.Usage()
		os.Exit(2)
	}
	return v
}

// ints parses "3,1,4" into a JSON-ready int slice.
func ints(s string) []int {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &out[i]); err != nil {
			log.Fatalf("coord component %q is not an integer", p)
		}
	}
	return out
}

// do issues one request and streams the (already-indented) JSON response to
// stdout; API errors land on stderr with the envelope's message.
func do(method, url string, body any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			return fmt.Errorf("%s (%s, HTTP %d)", env.Error.Message, env.Error.Code, resp.StatusCode)
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	_, err = os.Stdout.Write(data)
	return err
}
