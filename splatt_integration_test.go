// Integration tests exercising the public API end to end: the workflows a
// downstream user runs (load → decompose → inspect; generate → save →
// reload; kernel-level MTTKRP; completion), across the paper's
// configuration axes.
package splatt_test

import (
	"math"
	"path/filepath"
	"testing"

	splatt "repro"
	"repro/internal/dense"
)

func TestPublicQuickstartFlow(t *testing.T) {
	tensor := splatt.NewRandomTensor([]int{40, 30, 20}, 3000, 1)
	opts := splatt.DefaultOptions()
	opts.Rank = 8
	opts.MaxIters = 10
	opts.Tasks = 2
	model, report, err := splatt.CPD(tensor, opts)
	if err != nil {
		t.Fatal(err)
	}
	if model.Rank() != 8 || model.Order() != 3 {
		t.Fatalf("model shape: rank %d order %d", model.Rank(), model.Order())
	}
	if report.Fit <= 0 || report.Fit > 1 {
		t.Errorf("fit %g out of range", report.Fit)
	}
	if report.Times["MTTKRP"] <= 0 {
		t.Error("missing MTTKRP timing")
	}
	// Model evaluation at a stored coordinate is finite.
	v := model.At(tensor.Coord(0))
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("model value %g", v)
	}
}

func TestPublicSaveLoadDecompose(t *testing.T) {
	dir := t.TempDir()
	orig := splatt.MustDataset("yelp", 1.0/1024)
	path := filepath.Join(dir, "yelp.tns")
	if err := splatt.SaveTensor(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := splatt.LoadTensor(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != orig.NNZ() {
		t.Fatalf("nnz %d != %d after round trip", back.NNZ(), orig.NNZ())
	}
	opts := splatt.DefaultOptions()
	opts.Rank = 6
	opts.MaxIters = 5
	_, report, err := splatt.CPD(back, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Iterations != 5 {
		t.Errorf("iterations %d", report.Iterations)
	}
}

func TestPublicMTTKRP(t *testing.T) {
	tensor := splatt.NewRandomTensor([]int{25, 20, 15}, 1500, 3)
	const rank = 6
	factors := make([]*splatt.Matrix, 3)
	for m, d := range tensor.Dims {
		factors[m] = dense.NewMatrix(d, rank)
		for i := range factors[m].Data {
			factors[m].Data[i] = float64(i%13) / 13
		}
	}
	out1 := dense.NewMatrix(tensor.Dims[0], rank)
	if err := splatt.MTTKRP(tensor, factors, 0, out1, 1); err != nil {
		t.Fatal(err)
	}
	out4 := dense.NewMatrix(tensor.Dims[0], rank)
	if err := splatt.MTTKRP(tensor, factors, 0, out4, 4); err != nil {
		t.Fatal(err)
	}
	if d := out1.MaxAbsDiff(out4); d > 1e-9 {
		t.Errorf("task counts disagree by %g", d)
	}
	if err := splatt.MTTKRP(tensor, factors, 9, out1, 1); err == nil {
		t.Error("bad mode accepted")
	}
	if err := splatt.MTTKRP(tensor, factors[:2], 0, out1, 1); err == nil {
		t.Error("wrong factor count accepted")
	}
}

func TestPublicProfilesAndAxes(t *testing.T) {
	tensor := splatt.MustDataset("yelp", 1.0/1024)
	base := splatt.DefaultOptions()
	base.Rank = 6
	base.MaxIters = 4
	base.Tasks = 4

	var ref *splatt.KruskalTensor
	for _, p := range []splatt.Profile{splatt.ProfileReference, splatt.ProfileInitial, splatt.ProfileOptimized} {
		opts := base
		opts.ApplyProfile(p)
		model, _, err := splatt.CPD(tensor, opts)
		if err != nil {
			t.Fatalf("profile %v: %v", p, err)
		}
		if ref == nil {
			ref = model
			continue
		}
		for m := range ref.Factors {
			if d := ref.Factors[m].MaxAbsDiff(model.Factors[m]); d > 1e-6 {
				t.Errorf("profile %v factor %d deviates by %g", p, m, d)
			}
		}
	}

	// Axis overrides compose: every lock kind and access mode still
	// produces the same decomposition.
	for _, lock := range []interface{ String() string }{splatt.LockAtomic, splatt.LockSync, splatt.LockFIFO} {
		_ = lock
	}
	opts := base
	opts.Access = splatt.AccessIndex2D
	opts.LockKind = splatt.LockSync
	opts.SortVariant = splatt.SortSliceOpt
	opts.Alloc = splatt.AllocAll
	model, _, err := splatt.CPD(tensor, opts)
	if err != nil {
		t.Fatal(err)
	}
	for m := range ref.Factors {
		if d := ref.Factors[m].MaxAbsDiff(model.Factors[m]); d > 1e-6 {
			t.Errorf("axis combination deviates at factor %d by %g", m, d)
		}
	}
}

func TestPublicStrategySplit(t *testing.T) {
	// The reproduction's central behavioural claim, via the public API:
	// the YELP twin uses locks at high task counts, the NELL-2 twin never
	// does.
	check := func(name string, wantLocks bool) {
		tensor := splatt.MustDataset(name, 1.0/256)
		opts := splatt.DefaultOptions()
		opts.Rank = 8
		opts.MaxIters = 2
		opts.Tasks = 8
		_, report, err := splatt.CPD(tensor, opts)
		if err != nil {
			t.Fatal(err)
		}
		if report.UsedLocks() != wantLocks {
			t.Errorf("%s at 8 tasks: UsedLocks=%v, want %v (strategies %v)",
				name, report.UsedLocks(), wantLocks, report.Strategies)
		}
	}
	check("yelp", true)
	check("nell-2", false)
}

func TestPublicCompletion(t *testing.T) {
	tensor := splatt.NewRandomTensor([]int{20, 15, 10}, 1000, 5)
	opts := splatt.DefaultCompletionOptions()
	opts.Rank = 4
	opts.MaxIters = 10
	opts.Tasks = 2
	model, report, err := splatt.CPDComplete(tensor, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.RMSE < 0 || math.IsNaN(report.RMSE) {
		t.Errorf("RMSE %g", report.RMSE)
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicStats(t *testing.T) {
	tensor := splatt.MustDataset("nell-2", 1.0/1024)
	s := splatt.ComputeStats("NELL-2", tensor)
	if s.NNZ != tensor.NNZ() || s.Density <= 0 {
		t.Errorf("stats %+v", s)
	}
	if _, err := splatt.Dataset("unknown", 0.1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestPublicTimerAggregation(t *testing.T) {
	// A shared registry accumulates across runs (how the harness batches
	// trials).
	reg := splatt.NewTimerRegistry()
	tensor := splatt.NewRandomTensor([]int{20, 15, 10}, 800, 7)
	opts := splatt.DefaultOptions()
	opts.Rank = 4
	opts.MaxIters = 3
	opts.Timers = reg
	if _, _, err := splatt.CPD(tensor, opts); err != nil {
		t.Fatal(err)
	}
	first := reg.Seconds("MTTKRP")
	if _, _, err := splatt.CPD(tensor, opts); err != nil {
		t.Fatal(err)
	}
	if reg.Seconds("MTTKRP") <= first {
		t.Error("registry did not accumulate across runs")
	}
}
