// BenchmarkWarmStartAbsorb pins the streaming claim in the benchmark gate:
// absorbing a ~1% nonzero append into a published model (sampled ARLS with
// the short absorb schedule) must stay a small fraction of the cold
// decomposition it replaces, in both iterations and wall time. The cold
// sub-benchmark is the reference; both report an explicit iters/op metric
// so the nightly benchstat summary shows the convergence gap, not just
// ns/op.
package splatt_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sketch"
	"repro/internal/sptensor"
)

// splitWarmStart carves every step-th nonzero out of the twin into an
// append batch, leaving the base the pre-append tensor (same dims).
func splitWarmStart(t *sptensor.Tensor, step int) (base *sptensor.Tensor) {
	base = sptensor.New(t.Dims, 0)
	for x := 0; x < t.NNZ(); x++ {
		if x%step == step-1 {
			continue
		}
		for m := range t.Dims {
			base.Inds[m] = append(base.Inds[m], t.Inds[m][x])
		}
		base.Vals = append(base.Vals, t.Vals[x])
	}
	return base
}

func BenchmarkWarmStartAbsorb(b *testing.B) {
	full := benchTensor(b, "yelp")
	base := splitWarmStart(full, 100)

	cold := core.DefaultOptions()
	cold.Rank = benchRank
	cold.MaxIters = 20

	// The published pre-append model every warm iteration seeds from,
	// computed outside the timed region.
	seed, _, err := core.CPD(base, cold)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		iters := 0
		for i := 0; i < b.N; i++ {
			_, r, err := core.CPD(full, cold)
			if err != nil {
				b.Fatal(err)
			}
			iters += r.Iterations
		}
		b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
	})

	b.Run("warm", func(b *testing.B) {
		warm := core.DefaultOptions()
		warm.Rank = benchRank
		warm.MaxIters = sketch.AbsorbMaxIters
		warm.Solver = sketch.ARLS
		warm.Init = seed
		iters := 0
		for i := 0; i < b.N; i++ {
			_, r, err := core.CPD(full, warm)
			if err != nil {
				b.Fatal(err)
			}
			if !r.WarmStart {
				b.Fatal("warm run's report does not mark WarmStart")
			}
			iters += r.Iterations
		}
		b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
	})
}
