GO ?= go

.PHONY: all build test race bench bench-gate profile serve fmt vet lint cover ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Writes benchmarks/latest.txt; fails on >BENCH_MAX_REGRESSION_PCT (5)
# ns/op regressions or allocs/op growth beyond BENCH_MAX_ALLOC_GROWTH (8)
# when benchmarks/baseline.txt is committed.
bench-gate:
	./scripts/bench.sh

# Captures a CPU profile of the steady-state CP-ALS iteration benches
# (PROFILE_BENCH overrides the pattern). Inspect with:
#   go tool pprof bench.test cpu.prof
profile:
	$(GO) test -run '^$$' -bench '$(or $(PROFILE_BENCH),BenchmarkSteadyState)' \
		-benchtime 20x -count 1 -cpuprofile cpu.prof -o bench.test .
	@echo "wrote cpu.prof (binary: bench.test); open with: go tool pprof bench.test cpu.prof"

serve:
	$(GO) run ./cmd/splatt-serve

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs golangci-lint (.golangci.yml) when installed; otherwise it
# falls back to the gofmt + vet pair so `make ci` works on any machine.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; falling back to gofmt + go vet"; \
		$(MAKE) fmt vet; \
	fi

# cover enforces the pinned total-coverage floor (scripts/coverage.sh).
cover:
	./scripts/coverage.sh

ci: lint build test race
