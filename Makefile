GO ?= go

.PHONY: all build test race bench fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build test race
