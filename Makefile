GO ?= go

.PHONY: all build test race bench bench-gate serve fmt vet lint cover ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Writes benchmarks/latest.txt; fails on >BENCH_MAX_REGRESSION_PCT (5)
# regressions when benchmarks/baseline.txt is committed.
bench-gate:
	./scripts/bench.sh

serve:
	$(GO) run ./cmd/splatt-serve

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs golangci-lint (.golangci.yml) when installed; otherwise it
# falls back to the gofmt + vet pair so `make ci` works on any machine.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; falling back to gofmt + go vet"; \
		$(MAKE) fmt vet; \
	fi

# cover enforces the pinned total-coverage floor (scripts/coverage.sh).
cover:
	./scripts/coverage.sh

ci: lint build test race
