GO ?= go

.PHONY: all build test race bench bench-gate serve fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Writes benchmarks/latest.txt; fails on >BENCH_MAX_REGRESSION_PCT (5)
# regressions when benchmarks/baseline.txt is committed.
bench-gate:
	./scripts/bench.sh

serve:
	$(GO) run ./cmd/splatt-serve

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build test race
