// Integration tests for the distributed public surface: CPDDistributed
// must agree with shared-memory CPD across world sizes, including the
// degenerate configurations (single locale, more locales than slices).
package splatt_test

import (
	"math"
	"testing"

	splatt "repro"
)

// TestCPDDistributedMatchesCPD runs the public distributed entry point at
// locales ∈ {1, 2, 4} against shared-memory CPD on the same tensor and
// seed, requiring fit agreement within 1e-8 and, for multi-locale runs,
// nonzero communication volume.
func TestCPDDistributedMatchesCPD(t *testing.T) {
	tensor := splatt.NewRandomTensor([]int{25, 35, 45}, 2500, 13)
	opts := splatt.DefaultOptions()
	opts.Rank = 8
	opts.MaxIters = 12
	opts.Seed = 5
	_, base, err := splatt.CPD(tensor, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, locales := range []int{1, 2, 4} {
		dopts := splatt.DefaultDistOptions()
		dopts.Locales = locales
		dopts.Rank = 8
		dopts.MaxIters = 12
		dopts.Seed = 5
		model, report, err := splatt.CPDDistributed(tensor, dopts)
		if err != nil {
			t.Fatalf("locales=%d: %v", locales, err)
		}
		if math.Abs(report.Fit-base.Fit) > 1e-8 {
			t.Errorf("locales=%d: fit %.12f, shared-memory %.12f",
				locales, report.Fit, base.Fit)
		}
		if model.Order() != tensor.NModes() || model.Rank() != 8 {
			t.Errorf("locales=%d: model shape order=%d rank=%d",
				locales, model.Order(), model.Rank())
		}
		if locales >= 2 && report.CommBytes == 0 {
			t.Errorf("locales=%d: report shows zero communication", locales)
		}
		if locales == 1 && report.CommBytes != 0 {
			t.Errorf("single locale moved %d bytes", report.CommBytes)
		}
		if len(report.ShardNNZ) != locales {
			t.Errorf("locales=%d: %d shards reported", locales, len(report.ShardNNZ))
		}
	}
}

// TestCPDDistributedOversubscribed covers locales > populated slices: the
// run must complete with empty shards rather than deadlock or error.
func TestCPDDistributedOversubscribed(t *testing.T) {
	tensor := splatt.NewRandomTensor([]int{4, 30, 30}, 600, 17)
	dopts := splatt.DefaultDistOptions()
	dopts.Locales = 6
	dopts.Rank = 4
	dopts.MaxIters = 5
	model, report, err := splatt.CPDDistributed(tensor, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Validate(); err != nil {
		t.Errorf("invalid model: %v", err)
	}
	total := 0
	for _, n := range report.ShardNNZ {
		total += n
	}
	if total != tensor.NNZ() {
		t.Errorf("shards hold %d nnz, want %d", total, tensor.NNZ())
	}
}

// TestCPDDistributedDataset smoke-tests the distributed path on a Table-I
// dataset twin, the configuration BenchmarkAblationDistributed sweeps.
func TestCPDDistributedDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset twin generation in -short mode")
	}
	tensor := splatt.MustDataset("nell-2", 1.0/256)
	dopts := splatt.DefaultDistOptions()
	dopts.Locales = 4
	dopts.Rank = 8
	dopts.MaxIters = 3
	_, report, err := splatt.CPDDistributed(tensor, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if report.ImbalanceRatio() < 1 {
		t.Errorf("imbalance ratio %g < 1", report.ImbalanceRatio())
	}
	if report.MTTKRPSeconds <= 0 {
		t.Errorf("MTTKRP critical path %g <= 0", report.MTTKRPSeconds)
	}
}
