// Steady-state allocation benchmarks: CP-ALS iterations measured through
// core.Session, with the backend build, team spawn, and first (warm-up)
// iteration excluded. After the hot-path overhaul (arena-backed workspaces,
// cached parallel-region bodies, reusable kernel scratch) warm iterations
// allocate ~nothing; the bench gate records allocs/op in the baseline and
// fails the build when they regress beyond BENCH_MAX_ALLOC_GROWTH.
package splatt_test

import (
	"fmt"
	"testing"

	splatt "repro"
	"repro/internal/core"
	"repro/internal/obs"
)

// benchSteadyState measures one full ALS iteration per op on a warm
// session. With spans, the session records into a span profiler sized so
// the ring overflows mid-run — the measured path is the steady-state one
// (aggregate atomics plus drop counting), which must stay at 0 allocs/op.
func benchSteadyState(b *testing.B, ds string, format splatt.StorageFormat,
	solver splatt.Solver, tasks int, spans bool) {

	t := benchTensor(b, ds)
	opts := core.DefaultOptions()
	opts.Rank = benchRank
	opts.Tasks = tasks
	opts.Format = format
	opts.Solver = solver
	if spans {
		opts.Spans = obs.NewProfiler(1, 4096)
	}
	// Enough budget that the measured iterations never hit MaxIters, and
	// (for ARLS) stay inside the sampled phase: the point is steady-state
	// behaviour, not convergence.
	opts.MaxIters = b.N + 16
	opts.RefineIters = 2
	s, err := core.NewSession(t, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.Iterate(1) // warm-up: grows every arena pool to its steady size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Iterate(1)
	}
}

// BenchmarkSteadyStateALS covers the exact solver's iteration loop across
// both storage backends, serial and parallel.
func BenchmarkSteadyStateALS(b *testing.B) {
	for _, ds := range []string{"yelp", "nell-2"} {
		for _, f := range []splatt.StorageFormat{splatt.FormatCSF, splatt.FormatALTO} {
			for _, tasks := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%v/tasks=%d", ds, f, tasks), func(b *testing.B) {
					benchSteadyState(b, ds, f, splatt.SolverALS, tasks, false)
				})
			}
		}
	}
}

// BenchmarkSteadyStateARLS covers the sampled (CP-ARLS-LEV) solver's
// iteration loop — draws, sampled accumulation, leverage refresh — on both
// backends.
func BenchmarkSteadyStateARLS(b *testing.B) {
	for _, f := range []splatt.StorageFormat{splatt.FormatCSF, splatt.FormatALTO} {
		b.Run(fmt.Sprintf("yelp/%v/tasks=4", f), func(b *testing.B) {
			benchSteadyState(b, "yelp", f, splatt.SolverARLS, 4, false)
		})
	}
}

// BenchmarkSteadyStateSpans re-measures the iteration loops with the span
// profiler attached: the delta against the spans-off benches above is the
// whole-iteration cost of phase attribution, and the alloc gate holds the
// instrumented loop at the same 0 allocs/op as the bare one.
func BenchmarkSteadyStateSpans(b *testing.B) {
	b.Run("yelp/csf/als/tasks=1", func(b *testing.B) {
		benchSteadyState(b, "yelp", splatt.FormatCSF, splatt.SolverALS, 1, true)
	})
	b.Run("yelp/csf/als/tasks=4", func(b *testing.B) {
		benchSteadyState(b, "yelp", splatt.FormatCSF, splatt.SolverALS, 4, true)
	})
	b.Run("yelp/csf/arls/tasks=4", func(b *testing.B) {
		benchSteadyState(b, "yelp", splatt.FormatCSF, splatt.SolverARLS, 4, true)
	})
}
