// Benchmarks regenerating every table and figure of the paper's evaluation
// as testing.B targets (one Benchmark per artifact, configurations as
// sub-benchmarks). These run at a reduced twin scale so `go test -bench=.`
// finishes on a laptop; cmd/splatt-bench produces the full paper-style
// reports with side-by-side paper values.
//
// Mapping (see DESIGN.md §5):
//
//	BenchmarkTable1  dataset twin generation + statistics
//	BenchmarkTable3  full CP-ALS per profile (C vs Chapel-initial)
//	BenchmarkFig1    sorting optimization variants
//	BenchmarkFig2/3  MTTKRP access modes (YELP / NELL-2)
//	BenchmarkFig4    mutex pool kinds on the lock-requiring twin
//	BenchmarkFig5-8  per-routine CP-ALS, reference vs optimized port
//	BenchmarkFig9/10 MTTKRP scaling across the three codes
//	BenchmarkAblation* design-choice ablations (DESIGN.md §6)
package splatt_test

import (
	"fmt"
	"sync"
	"testing"

	splatt "repro"
	"repro/internal/core"
	"repro/internal/csf"
	"repro/internal/dense"
	"repro/internal/dist"
	"repro/internal/locks"
	"repro/internal/mttkrp"
	"repro/internal/parallel"
	"repro/internal/sptensor"
	"repro/internal/tsort"
)

// benchScale keeps bench tensors laptop-sized (YELP twin ≈ 31k nnz,
// NELL-2 twin ≈ 300k nnz) while preserving the scale-invariant nnz/slice
// ratios that drive the lock-vs-privatize behaviour.
const benchScale = 1.0 / 256

const benchRank = 16

var (
	benchMu    sync.Mutex
	benchCache = map[string]*sptensor.Tensor{}
)

func benchTensor(b *testing.B, name string) *sptensor.Tensor {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if t, ok := benchCache[name]; ok {
		return t
	}
	t := splatt.MustDataset(name, benchScale)
	benchCache[name] = t
	return t
}

func benchFactors(t *sptensor.Tensor, rank int) []*dense.Matrix {
	factors := make([]*dense.Matrix, t.NModes())
	for m, d := range t.Dims {
		factors[m] = dense.NewMatrix(d, rank)
		for i := range factors[m].Data {
			factors[m].Data[i] = float64(i%97) / 97
		}
	}
	return factors
}

// benchMTTKRP times one full round of MTTKRPs (every mode once).
func benchMTTKRP(b *testing.B, t *sptensor.Tensor, tasks int, opts core.Options) {
	b.Helper()
	runner, err := core.NewMTTKRPRunner(t, benchRank, tasks, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	factors := benchFactors(t, benchRank)
	outs := make([]*dense.Matrix, t.NModes())
	for m := range outs {
		outs[m] = dense.NewMatrix(t.Dims[m], benchRank)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := 0; m < t.NModes(); m++ {
			runner.Apply(m, factors, outs[m])
		}
	}
	b.SetBytes(int64(t.NNZ()) * int64(t.NModes()) * 8)
}

// benchCPD times a short full CP-ALS run.
func benchCPD(b *testing.B, t *sptensor.Tensor, tasks int, p core.Profile) {
	b.Helper()
	opts := core.DefaultOptions()
	opts.ApplyProfile(p)
	opts.Rank = benchRank
	opts.MaxIters = 3
	opts.Tasks = tasks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.CPD(t, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I: twin generation + statistics.
func BenchmarkTable1_DatasetProperties(b *testing.B) {
	for _, key := range sptensor.DatasetOrder {
		spec := sptensor.Datasets[key]
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := spec.Generate(benchScale / 4)
				_ = sptensor.ComputeStats(spec.Name, t)
			}
		})
	}
}

// BenchmarkTable3 regenerates Table III: full CP-ALS, reference vs initial
// port, serial and parallel.
func BenchmarkTable3_InitialResults(b *testing.B) {
	for _, ds := range []string{"yelp", "nell-2"} {
		t := benchTensor(b, ds)
		for _, tasks := range []int{1, 4} {
			for _, p := range []core.Profile{core.ProfileReference, core.ProfileInitial} {
				b.Run(fmt.Sprintf("%s/tasks=%d/%v", ds, tasks, p), func(b *testing.B) {
					benchCPD(b, t, tasks, p)
				})
			}
		}
	}
}

// BenchmarkFig1 regenerates Figure 1: the sorting optimization variants.
func BenchmarkFig1_SortVariants(b *testing.B) {
	t := benchTensor(b, "nell-2")
	for _, v := range tsort.Variants {
		for _, tasks := range []int{1, 4} {
			b.Run(fmt.Sprintf("%v/tasks=%d", v, tasks), func(b *testing.B) {
				team := parallel.NewTeam(tasks)
				defer team.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					clone := t.Clone()
					b.StartTimer()
					tsort.SortForRoot(clone, 0, team, v)
				}
			})
		}
	}
}

// figAccessBench shares the Figures 2-3 access sweep.
func figAccessBench(b *testing.B, ds string) {
	t := benchTensor(b, ds)
	for _, access := range []mttkrp.AccessMode{mttkrp.AccessSlice, mttkrp.AccessIndex2D, mttkrp.AccessPointer} {
		for _, tasks := range []int{1, 4} {
			b.Run(fmt.Sprintf("%v/tasks=%d", access, tasks), func(b *testing.B) {
				opts := core.DefaultOptions()
				opts.Access = access
				benchMTTKRP(b, t, tasks, opts)
			})
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: YELP access modes.
func BenchmarkFig2_AccessModes_YELP(b *testing.B) { figAccessBench(b, "yelp") }

// BenchmarkFig3 regenerates Figure 3: NELL-2 access modes.
func BenchmarkFig3_AccessModes_NELL2(b *testing.B) { figAccessBench(b, "nell-2") }

// BenchmarkFig4 regenerates Figure 4: mutex pool kinds on YELP (which
// requires locks beyond 2 tasks).
func BenchmarkFig4_LockKinds_YELP(b *testing.B) {
	t := benchTensor(b, "yelp")
	for _, kind := range []locks.Kind{locks.Sync, locks.Spin, locks.FIFO} {
		for _, tasks := range []int{1, 4} {
			b.Run(fmt.Sprintf("%v/tasks=%d", kind, tasks), func(b *testing.B) {
				opts := core.DefaultOptions()
				opts.Access = mttkrp.AccessPointer
				opts.LockKind = kind
				benchMTTKRP(b, t, tasks, opts)
			})
		}
	}
}

// figPerRoutineBench shares the Figures 5-8 comparison.
func figPerRoutineBench(b *testing.B, ds string, tasks int) {
	t := benchTensor(b, ds)
	for _, p := range []core.Profile{core.ProfileReference, core.ProfileOptimized} {
		b.Run(p.String(), func(b *testing.B) {
			benchCPD(b, t, tasks, p)
		})
	}
}

// BenchmarkFig5 regenerates Figure 5: YELP per-routine, serial.
func BenchmarkFig5_PerRoutine_YELP_1task(b *testing.B) { figPerRoutineBench(b, "yelp", 1) }

// BenchmarkFig6 regenerates Figure 6: NELL-2 per-routine, serial.
func BenchmarkFig6_PerRoutine_NELL2_1task(b *testing.B) { figPerRoutineBench(b, "nell-2", 1) }

// BenchmarkFig7 regenerates Figure 7: YELP per-routine, parallel.
func BenchmarkFig7_PerRoutine_YELP_4tasks(b *testing.B) { figPerRoutineBench(b, "yelp", 4) }

// BenchmarkFig8 regenerates Figure 8: NELL-2 per-routine, parallel.
func BenchmarkFig8_PerRoutine_NELL2_4tasks(b *testing.B) { figPerRoutineBench(b, "nell-2", 4) }

// figScalingBench shares the Figures 9-10 code comparison.
func figScalingBench(b *testing.B, ds string) {
	t := benchTensor(b, ds)
	for _, p := range []core.Profile{core.ProfileReference, core.ProfileInitial, core.ProfileOptimized} {
		for _, tasks := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%v/tasks=%d", p, tasks), func(b *testing.B) {
				opts := core.DefaultOptions()
				opts.ApplyProfile(p)
				benchMTTKRP(b, t, tasks, opts)
			})
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: YELP MTTKRP scaling across codes.
func BenchmarkFig9_MTTKRPScaling_YELP(b *testing.B) { figScalingBench(b, "yelp") }

// BenchmarkFig10 regenerates Figure 10: NELL-2 MTTKRP scaling across codes.
func BenchmarkFig10_MTTKRPScaling_NELL2(b *testing.B) { figScalingBench(b, "nell-2") }

// BenchmarkAblationBlasThreads reproduces the §V-E interference study.
func BenchmarkAblationBlasThreads(b *testing.B) {
	t := benchTensor(b, "yelp")
	for _, cfg := range []struct{ threads, spin int }{
		{1, 0}, {2, 0}, {2, 300000}, {4, 300000},
	} {
		b.Run(fmt.Sprintf("threads=%d/spin=%d", cfg.threads, cfg.spin), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Rank = benchRank
			opts.MaxIters = 3
			opts.Tasks = 2
			opts.BLASThreads = cfg.threads
			opts.BLASSpin = cfg.spin
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.CPD(t, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPrivatize ablates the lock-vs-privatize decision rule.
func BenchmarkAblationPrivatize(b *testing.B) {
	for _, ds := range []string{"yelp", "nell-2"} {
		t := benchTensor(b, ds)
		for _, strat := range []mttkrp.ConflictStrategy{mttkrp.StrategyAuto, mttkrp.StrategyLock, mttkrp.StrategyPrivatize} {
			b.Run(fmt.Sprintf("%s/%v", ds, strat), func(b *testing.B) {
				opts := core.DefaultOptions()
				opts.Strategy = strat
				benchMTTKRP(b, t, 4, opts)
			})
		}
	}
}

// BenchmarkAblationTile compares tile-phased scheduling (the extension)
// against locks and privatization on the lock-requiring twin.
func BenchmarkAblationTile(b *testing.B) {
	t := benchTensor(b, "yelp")
	for _, strat := range []mttkrp.ConflictStrategy{mttkrp.StrategyLock, mttkrp.StrategyPrivatize, mttkrp.StrategyTile} {
		b.Run(strat.String(), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Strategy = strat
			benchMTTKRP(b, t, 4, opts)
		})
	}
}

// BenchmarkAblationCSFAlloc ablates the CSF allocation policy.
func BenchmarkAblationCSFAlloc(b *testing.B) {
	t := benchTensor(b, "yelp")
	for _, policy := range []csf.AllocPolicy{csf.AllocOne, csf.AllocTwo, csf.AllocAll} {
		b.Run(policy.String(), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Alloc = policy
			benchMTTKRP(b, t, 4, opts)
		})
	}
}

// BenchmarkAblationCOO compares CSF kernels against the coordinate-form
// parallel baseline.
func BenchmarkAblationCOO(b *testing.B) {
	for _, ds := range []string{"yelp", "nell-2"} {
		t := benchTensor(b, ds)
		factors := benchFactors(t, benchRank)
		b.Run(ds+"/csf", func(b *testing.B) {
			benchMTTKRP(b, t, 2, core.DefaultOptions())
		})
		b.Run(ds+"/coo", func(b *testing.B) {
			team := parallel.NewTeam(2)
			defer team.Close()
			pool := locks.NewPool(locks.Spin, 0)
			outs := make([]*dense.Matrix, t.NModes())
			for m := range outs {
				outs[m] = dense.NewMatrix(t.Dims[m], benchRank)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for m := 0; m < t.NModes(); m++ {
					mttkrp.COOParallel(t, factors, m, outs[m], team, pool)
				}
			}
		})
	}
}

// BenchmarkAblationFormat compares the CSF and ALTO storage backends'
// MTTKRP on the regular and hub-skewed twins.
func BenchmarkAblationFormat(b *testing.B) {
	for _, ds := range []string{"yelp", "nell-2"} {
		t := benchTensor(b, ds)
		for _, f := range []splatt.StorageFormat{splatt.FormatCSF, splatt.FormatALTO} {
			b.Run(fmt.Sprintf("%s/%v", ds, f), func(b *testing.B) {
				opts := core.DefaultOptions()
				opts.Format = f
				benchMTTKRP(b, t, 4, opts)
			})
		}
	}
}

// BenchmarkAblationSolver compares the exact and leverage-score sampled
// (CP-ARLS-LEV) solvers on a short full CP-ALS run over the skewed twin.
func BenchmarkAblationSolver(b *testing.B) {
	t := benchTensor(b, "yelp")
	for _, solver := range []splatt.Solver{splatt.SolverALS, splatt.SolverARLS} {
		b.Run(fmt.Sprintf("solver=%v", solver), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Solver = solver
			opts.Rank = benchRank
			opts.MaxIters = 6
			opts.RefineIters = 2
			opts.Tasks = 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.CPD(t, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDistributed times the simulated multi-locale CP-ALS
// extension across world sizes.
func BenchmarkAblationDistributed(b *testing.B) {
	t := benchTensor(b, "nell-2")
	for _, locales := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("locales=%d", locales), func(b *testing.B) {
			opts := dist.DefaultOptions()
			opts.Locales = locales
			opts.Rank = benchRank
			opts.MaxIters = 3
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := dist.CPD(t, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubstrates covers the dense linear-algebra substrate the
// pipeline calls per iteration (syrk + normal-equation solve at paper
// shapes: 35-column factors).
func BenchmarkSubstrates(b *testing.B) {
	const rows, rank = 20000, 35
	a := dense.NewMatrix(rows, rank)
	for i := range a.Data {
		a.Data[i] = float64(i%31) / 31
	}
	gram := dense.NewMatrix(rank, rank)
	b.Run("syrk", func(b *testing.B) {
		team := parallel.NewTeam(2)
		defer team.Close()
		for i := 0; i < b.N; i++ {
			dense.Syrk(team, a, gram)
		}
	})
	b.Run("solve-normals", func(b *testing.B) {
		team := parallel.NewTeam(2)
		defer team.Close()
		dense.Syrk(team, a, gram)
		for j := 0; j < rank; j++ {
			gram.Set(j, j, gram.At(j, j)+1)
		}
		m := a.Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dense.SolveNormals(team, gram, m)
		}
	})
	b.Run("pseudo-inverse", func(b *testing.B) {
		team := parallel.NewTeam(1)
		defer team.Close()
		dense.Syrk(team, a, gram)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = dense.PseudoInverse(gram, 0)
		}
	})
}
