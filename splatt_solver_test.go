// Integration tests for the pluggable-solver public surface: the sampled
// (ARLS) solver must be deterministic under a seed, agree between the
// shared-memory and distributed engines, and land within fit parity of
// exact ALS.
package splatt_test

import (
	"math"
	"testing"

	splatt "repro"
)

// TestSolverCoreVsDistributed runs -solver arls through both public
// engines on the same tensor and seed. locales=1 must match the
// shared-memory engine bitwise (it short-circuits to it); multi-locale
// runs draw the identical sample sets via the seed-split RNG and agree up
// to floating-point reassociation.
func TestSolverCoreVsDistributed(t *testing.T) {
	tensor := splatt.NewRandomTensor([]int{40, 30, 25}, 6000, 19)
	opts := splatt.DefaultOptions()
	opts.Rank = 8
	opts.MaxIters = 10
	opts.Seed = 5
	opts.Solver = splatt.SolverARLS
	base, baseRep, err := splatt.CPD(tensor, opts)
	if err != nil {
		t.Fatal(err)
	}
	if baseRep.Solver != "arls" || baseRep.SampledIters == 0 {
		t.Fatalf("reference run not sampled: %+v", baseRep)
	}

	for _, locales := range []int{1, 2, 4} {
		dopts := splatt.DefaultDistOptions()
		dopts.Locales = locales
		dopts.Rank = 8
		dopts.MaxIters = 10
		dopts.Seed = 5
		dopts.Solver = splatt.SolverARLS
		k, rep, err := splatt.CPDDistributed(tensor, dopts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Solver != "arls" {
			t.Fatalf("locales=%d resolved solver %q", locales, rep.Solver)
		}
		if rep.SampledIters != baseRep.SampledIters {
			t.Errorf("locales=%d sampled %d iterations, core sampled %d",
				locales, rep.SampledIters, baseRep.SampledIters)
		}
		tol := 0.0 // locales=1 short-circuits to the shared-memory engine
		if locales > 1 {
			tol = 1e-8
		}
		if d := math.Abs(rep.Fit - baseRep.Fit); d > tol {
			t.Errorf("locales=%d fit %.12f vs core %.12f (|Δ|=%g)", locales, rep.Fit, baseRep.Fit, d)
		}
		for m := range k.Factors {
			if maxd := k.Factors[m].MaxAbsDiff(base.Factors[m]); maxd > tol {
				t.Errorf("locales=%d factor %d max |Δ| = %g beyond %g", locales, m, maxd, tol)
				break
			}
		}
	}
}

// TestSolverSeedDeterminismPublic: the documented guarantee that one seed
// fixes the whole ARLS trajectory through the public API.
func TestSolverSeedDeterminismPublic(t *testing.T) {
	tensor := splatt.NewRandomTensor([]int{35, 30, 20}, 4000, 3)
	opts := splatt.DefaultOptions()
	opts.Rank = 6
	opts.MaxIters = 6
	opts.Solver = splatt.SolverARLS
	k1, r1, err := splatt.CPD(tensor, opts)
	if err != nil {
		t.Fatal(err)
	}
	k2, r2, err := splatt.CPD(tensor, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fit != r2.Fit {
		t.Fatalf("fit differs across identical runs: %v vs %v", r1.Fit, r2.Fit)
	}
	for m := range k1.Factors {
		if d := k1.Factors[m].MaxAbsDiff(k2.Factors[m]); d != 0 {
			t.Fatalf("factor %d differs across identical runs (max |Δ| = %g)", m, d)
		}
	}
}

// TestSolverExports exercises the public parse/choose surface.
func TestSolverExports(t *testing.T) {
	for _, s := range []string{"als", "arls", "auto"} {
		if _, err := splatt.ParseSolver(s); err != nil {
			t.Errorf("ParseSolver(%q): %v", s, err)
		}
	}
	if _, err := splatt.ParseSolver("simplex"); err == nil {
		t.Error("ParseSolver accepted nonsense")
	}
	small := splatt.NewRandomTensor([]int{10, 10, 10}, 200, 1)
	if s, reason := splatt.ChooseSolver(small, 8); s != splatt.SolverALS || reason == "" {
		t.Errorf("ChooseSolver(small) = %v (%q)", s, reason)
	}
}
